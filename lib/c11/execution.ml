module IntSet = Set.Make (Int)

type problem =
  | Data_race of { first : Action.t; second : Action.t }
  | Uninitialized_load of Action.t

(* ------------------------------------------------------------------ *)
(* Canonical graph fingerprint                                         *)

(* Incremental 64-bit fingerprint of the execution graph, invariant
   under the commit interleaving: two runs whose graphs agree on
   per-thread action sequences (kinds, locations, orders, values, and
   reads-from expressed as the (tid, seq) of the source write), on
   per-location modification order, and on the SC total order restricted
   to seq_cst actions hash equal — and runs differing in any of those
   hash differently (modulo 64-bit collisions). Thread ids are already
   canonical: they are assigned in creation order.

   Representation: an order-sensitive digest chain per thread, per
   location (mo) and for the SC order, XOR-folded into one running
   aggregate. Each chain update costs O(1): the aggregate is XORed with
   [old_chain ^ new_chain], so no end-of-run walk is needed. *)

let mix64 (z : int64) =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 33)) 0xff51afd7ed558ccdL in
  let z = mul (logxor z (shift_right_logical z 33)) 0xc4ceb9fe1a85ec53L in
  logxor z (shift_right_logical z 33)

let golden = 0x9E3779B97F4A7C15L
let h_step h x = mix64 (Int64.add (Int64.mul h golden) x)
let h_int h i = h_step h (Int64.of_int i)
let h_opt h = function None -> h_int h (-2) | Some v -> h_int (h_int h 2) v

let kind_tag : Action.kind -> int = function
  | Load -> 0
  | Store -> 1
  | Rmw -> 2
  | Na_load -> 3
  | Na_store -> 4
  | Fence -> 5
  | Create _ -> 6
  | Start -> 7
  | Join _ -> 8
  | Finish -> 9

(* The embedded thread id of Create/Join is part of the behaviour: it is
   the value the operation returns to (or consumes from) the program. *)
let kind_payload : Action.kind -> int = function
  | Create t | Join t -> t
  | Load | Store | Rmw | Na_load | Na_store | Fence | Start | Finish -> -1

let mo_tag : Memory_order.t -> int = function
  | Relaxed -> 0
  | Acquire -> 1
  | Release -> 2
  | Acq_rel -> 3
  | Seq_cst -> 4

type thread_state = {
  mutable clock : Clock.t;  (* knowledge including own committed steps *)
  mutable seq : int;
  mutable pending_acquire : Clock.t;  (* rule 29.8p3/p4: consumed by acquire fences *)
  mutable release_fence : Clock.t option;  (* clock at the latest release fence *)
  mutable sc_fences : (int * int) list;  (* (seq, commit id), newest first *)
  mutable inherited : Clock.t;  (* parent clock at Create, joined at Start *)
  mutable fp_chain : int64;  (* fingerprint chain over this thread's actions *)
}

(* Per-(location, thread) coherence index: the stores and atomic reads
   this thread committed to the location, as parallel (seq, mo index)
   arrays. Both columns are monotone — seq by construction, the write
   mo index because commit order restricted to one location IS mo, and
   the read mo index by the CoRR constraint (a thread's own earlier
   reads are always hb-visible, so [min_readable_index] never lets a
   later read observe an earlier write). Monotonicity is what lets
   candidate filtering binary-search these instead of rescanning the
   whole store list. *)
type loc_thread = {
  w_seq : int Vec.t;
  w_idx : int Vec.t;
  r_seq : int Vec.t;
  r_idx : int Vec.t;
}

type loc_state = {
  stores : Action.t Vec.t;  (* every write, commit order = modification order *)
  reads : (Action.t * int) Vec.t;  (* atomic reads with the mo index they read *)
  na_reads : Action.t Vec.t;
  mutable per_tid : loc_thread option array;  (* coherence index, grown on demand *)
  sc_ids : int Vec.t;  (* commit ids of seq_cst stores, increasing *)
  sc_idx : int Vec.t;  (* their mo indices, increasing *)
  idx_of : (int, int) Hashtbl.t;  (* action id -> mo index *)
  mutable na_stores : int;  (* non-atomic stores: gates race scans *)
  mutable fp_mo : int64;  (* fingerprint chain over mo *)
}

type t = {
  actions : Action.t Vec.t;
  mutable threads : thread_state array;
  locs : (int, loc_state) Hashtbl.t;
  mutable next_loc : int;
  mutable fp : int64;  (* XOR-fold of all fingerprint chains *)
  mutable fp_sc : int64;  (* fingerprint chain over the SC order *)
}

let create () =
  {
    actions = Vec.create ();
    threads = [||];
    locs = Hashtbl.create 64;
    next_loc = 0;
    fp = 0L;
    fp_sc = 0L;
  }

let new_thread_state () =
  {
    clock = Clock.empty;
    seq = 0;
    pending_acquire = Clock.empty;
    release_fence = None;
    sc_fences = [];
    inherited = Clock.empty;
    fp_chain = 0L;
  }

let thread t tid =
  let n = Array.length t.threads in
  if tid >= n then begin
    let threads = Array.init (tid + 4) (fun i -> if i < n then t.threads.(i) else new_thread_state ()) in
    t.threads <- threads
  end;
  t.threads.(tid)

let loc_state t loc =
  match Hashtbl.find_opt t.locs loc with
  | Some ls -> ls
  | None ->
    let ls =
      {
        stores = Vec.create ();
        reads = Vec.create ();
        na_reads = Vec.create ();
        per_tid = [||];
        sc_ids = Vec.create ();
        sc_idx = Vec.create ();
        idx_of = Hashtbl.create 16;
        na_stores = 0;
        fp_mo = h_int 0L loc;
      }
    in
    Hashtbl.add t.locs loc ls;
    ls

let loc_tid ls tid =
  let n = Array.length ls.per_tid in
  if tid >= n then begin
    let arr = Array.make (tid + 4) None in
    Array.blit ls.per_tid 0 arr 0 n;
    ls.per_tid <- arr
  end;
  match ls.per_tid.(tid) with
  | Some tl -> tl
  | None ->
    let tl = { w_seq = Vec.create (); w_idx = Vec.create (); r_seq = Vec.create (); r_idx = Vec.create () } in
    ls.per_tid.(tid) <- Some tl;
    tl

let num_actions t = Vec.length t.actions

let action t id = Vec.get t.actions id

let fingerprint t = mix64 (Int64.logxor t.fp (Int64.of_int (Vec.length t.actions)))

(* Index maintenance on commit. *)

let push_store t ls (a : Action.t) =
  let idx = Vec.length ls.stores in
  Vec.push ls.stores a;
  Hashtbl.replace ls.idx_of a.id idx;
  let tl = loc_tid ls a.tid in
  Vec.push tl.w_seq a.seq;
  Vec.push tl.w_idx idx;
  if Memory_order.is_seq_cst a.mo then begin
    Vec.push ls.sc_ids a.id;
    Vec.push ls.sc_idx idx
  end;
  if a.kind = Action.Na_store then ls.na_stores <- ls.na_stores + 1;
  let old = ls.fp_mo in
  let nw = h_int (h_int old a.tid) a.seq in
  ls.fp_mo <- nw;
  t.fp <- Int64.logxor t.fp (Int64.logxor old nw)

let push_read ls (a : Action.t) idx =
  Vec.push ls.reads (a, idx);
  let tl = loc_tid ls a.tid in
  Vec.push tl.r_seq a.seq;
  Vec.push tl.r_idx idx

(* hb(a, b) where [b] may be a not-yet-committed action of a thread whose
   current clock is [clock_b]. *)
let hb_clock clock_b (a : Action.t) = Clock.covers clock_b ~tid:a.tid ~seq:a.seq

let happens_before t a b =
  let a = action t a and b = action t b in
  Action.happens_before a b

let hb_or_sc t a b =
  if a = b then false
  else
    let aa = action t a and ab = action t b in
    Action.happens_before aa ab
    || (Action.is_seq_cst aa && Action.is_seq_cst ab && aa.id < ab.id)

let last_write t loc =
  match Hashtbl.find_opt t.locs loc with
  | Some ls when not (Vec.is_empty ls.stores) -> Some (Vec.last ls.stores)
  | _ -> None

(* Release-sequence walk (C++11 1.10p7, plus the hypothetical release
   sequences of 29.8): the clock acquired by a read of [stores.(rf_index)].
   A head candidate at index [i] is valid when every later chain element up
   to [rf_index] is an RMW or a store by the head's own thread. *)
let acquired_clock (ls : loc_state) rf_index =
  let rec walk i foreign acc =
    if i < 0 then acc
    else begin
      let w = Vec.get ls.stores i in
      let valid = IntSet.is_empty foreign || IntSet.equal foreign (IntSet.singleton w.Action.tid) in
      let acc =
        if valid then
          match w.Action.release_clock with
          | Some rc -> Clock.join acc rc
          | None -> acc
        else acc
      in
      let foreign = if w.Action.kind = Action.Rmw then foreign else IntSet.add w.Action.tid foreign in
      if IntSet.cardinal foreign >= 2 then acc else walk (i - 1) foreign acc
    end
  in
  walk rf_index IntSet.empty Clock.empty

(* A poison write models the pristine contents of uninitialized malloc'd
   memory: reads that are not forced past it observe garbage, which is
   reported as an uninitialized load. *)
let is_poison (a : Action.t) = Action.is_write a && a.written_value = None

(* Race detection: conflicting accesses (same location, at least one write,
   at least one non-atomic, different threads) unordered by hb. The new
   action [a] commits last, so only hb(prev, a) needs checking. Races need
   a non-atomic party, so for atomic accesses the scans are gated on the
   location having non-atomic accesses at all — on atomics-only locations
   (the common case) the check is O(1). *)
let race_problems (ls : loc_state) (a : Action.t) =
  let races = ref [] in
  let check (prev : Action.t) =
    if prev.tid <> a.tid && (not (is_poison prev)) && not (hb_clock a.clock prev) then
      races := Data_race { first = prev; second = a } :: !races
  in
  let a_is_na = Action.is_non_atomic a in
  (* against previous writes: conflict whenever one side is non-atomic *)
  if a_is_na then Vec.iter (fun (w : Action.t) -> check w) ls.stores
  else if ls.na_stores > 0 then
    Vec.iter (fun (w : Action.t) -> if Action.is_non_atomic w then check w) ls.stores;
  if Action.is_write a then begin
    (* against previous reads *)
    if a_is_na then Vec.iter (fun ((r : Action.t), _) -> check r) ls.reads;
    Vec.iter (fun (r : Action.t) -> check r) ls.na_reads
  end;
  !races

let store_index (ls : loc_state) (w : Action.t) =
  match Hashtbl.find_opt ls.idx_of w.Action.id with
  | Some i -> i
  | None -> invalid_arg "store_index: not a store of this location"

(* Largest index [j] with [v.(j) <= x] in an ascending vector, or -1. *)
let bsearch_le (v : int Vec.t) x =
  let lo = ref 0 and hi = ref (Vec.length v) in
  (* invariant: v.(lo-1) <= x < v.(hi) *)
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Vec.get v mid <= x then lo := mid + 1 else hi := mid
  done;
  !lo - 1

(* Smallest modification-order index a new load by [tid] may read,
   combining per-location coherence with the seq_cst rules (see .mli).

   Reference implementation: rescans the full store and read lists per
   query. Kept verbatim as the oracle for the differential tests of the
   incremental version below. *)
let min_readable_index_ref t ~tid ~mo (ls : loc_state) =
  let ts = thread t tid in
  let n = Vec.length ls.stores in
  let min_idx = ref 0 in
  let raise_to i = if i > !min_idx then min_idx := i in
  (* CoWR/CoRW: newest hb-visible write *)
  (try
     for i = n - 1 downto 0 do
       if hb_clock ts.clock (Vec.get ls.stores i) then begin
         raise_to i;
         raise Exit
       end
     done
   with Exit -> ());
  (* CoRR: newest mo index observed by an hb-prior read *)
  Vec.iter (fun (r, j) -> if hb_clock ts.clock r then raise_to j) ls.reads;
  let latest_sc_fence = match ts.sc_fences with (_, id) :: _ -> Some id | [] -> None in
  let fence_after_store ?bound (w : Action.t) =
    let fences = (thread t w.tid).sc_fences in
    List.exists
      (fun (seq, id) ->
        seq > w.Action.seq && match bound with Some b -> id < b | None -> true)
      fences
  in
  (* seq_cst load: at least the newest seq_cst store (29.3p3) *)
  if Memory_order.is_seq_cst mo then begin
    (try
       for i = n - 1 downto 0 do
         if Action.is_seq_cst (Vec.get ls.stores i) then begin
           raise_to i;
           raise Exit
         end
       done
     with Exit -> ());
    (* store sequenced before a seq_cst fence, seq_cst load (29.3p6) *)
    try
      for i = n - 1 downto 0 do
        if fence_after_store (Vec.get ls.stores i) then begin
          raise_to i;
          raise Exit
        end
      done
    with Exit -> ()
  end;
  (match latest_sc_fence with
  | None -> ()
  | Some fence_id ->
    (* seq_cst fence sequenced before the load (29.3p5): newest seq_cst
       store committed before that fence *)
    (try
       for i = n - 1 downto 0 do
         let w = Vec.get ls.stores i in
         if Action.is_seq_cst w && w.Action.id < fence_id then begin
           raise_to i;
           raise Exit
         end
       done
     with Exit -> ());
    (* fence-to-fence (29.3p7): store before fence X, X before our fence *)
    try
      for i = n - 1 downto 0 do
        if fence_after_store ~bound:fence_id (Vec.get ls.stores i) then begin
          raise_to i;
          raise Exit
        end
      done
    with Exit -> ());
  !min_idx

(* Incremental version: every rule reduces to "newest store (or read)
   of thread [u] with seq below a bound", answered by binary search on
   the per-(location, thread) monotone index — O(threads * log stores)
   per query instead of O(stores + reads). *)
let min_readable_index t ~tid ~mo (ls : loc_state) =
  let ts = thread t tid in
  let min_idx = ref 0 in
  let raise_to i = if i > !min_idx then min_idx := i in
  let ntl = Array.length ls.per_tid in
  (* CoWR/CoRW + CoRR: newest hb-visible write, and the newest mo index
     observed by an hb-visible read, per committing thread *)
  for u = 0 to ntl - 1 do
    match ls.per_tid.(u) with
    | None -> ()
    | Some tl ->
      let k = Clock.get ts.clock u in
      if k > 0 then begin
        (match bsearch_le tl.w_seq k with
        | -1 -> ()
        | j -> raise_to (Vec.get tl.w_idx j));
        match bsearch_le tl.r_seq k with
        | -1 -> ()
        | j -> raise_to (Vec.get tl.r_idx j)
      end
  done;
  let nthreads = Array.length t.threads in
  (* seq_cst load: at least the newest seq_cst store (29.3p3), and the
     newest store sequenced before any seq_cst fence (29.3p6) *)
  if Memory_order.is_seq_cst mo then begin
    if not (Vec.is_empty ls.sc_idx) then raise_to (Vec.last ls.sc_idx);
    for u = 0 to ntl - 1 do
      match ls.per_tid.(u) with
      | None -> ()
      | Some tl when u < nthreads -> (
        match t.threads.(u).sc_fences with
        | [] -> ()
        | (fence_seq, _) :: _ -> (
          (* newest store by [u] sequenced before u's newest sc fence *)
          match bsearch_le tl.w_seq (fence_seq - 1) with
          | -1 -> ()
          | j -> raise_to (Vec.get tl.w_idx j)))
      | Some _ -> ()
    done
  end;
  (match ts.sc_fences with
  | [] -> ()
  | (_, fence_id) :: _ ->
    (* seq_cst fence sequenced before the load (29.3p5): newest seq_cst
       store committed before that fence *)
    (match bsearch_le ls.sc_ids (fence_id - 1) with
    | -1 -> ()
    | j -> raise_to (Vec.get ls.sc_idx j));
    (* fence-to-fence (29.3p7): store before fence X, X before our fence.
       Per thread, seq and commit id grow together along its fence list,
       so the newest fence with id < fence_id also has the largest seq. *)
    for u = 0 to ntl - 1 do
      match ls.per_tid.(u) with
      | None -> ()
      | Some tl when u < nthreads -> (
        match List.find_opt (fun (_, id) -> id < fence_id) t.threads.(u).sc_fences with
        | None -> ()
        | Some (fence_seq, _) -> (
          match bsearch_le tl.w_seq (fence_seq - 1) with
          | -1 -> ()
          | j -> raise_to (Vec.get tl.w_idx j)))
      | Some _ -> ()
    done);
  !min_idx

let read_candidates_of min_readable t ~tid ~mo ~loc =
  let ls = loc_state t loc in
  let n = Vec.length ls.stores in
  if n = 0 then []
  else begin
    let min_idx = min_readable t ~tid ~mo ls in
    (* newest-first *)
    let rec collect i acc = if i > n - 1 then acc else collect (i + 1) (Vec.get ls.stores i :: acc) in
    collect min_idx []
  end

let read_candidates t ~tid ~mo ~loc = read_candidates_of min_readable_index t ~tid ~mo ~loc
let read_candidates_ref t ~tid ~mo ~loc = read_candidates_of min_readable_index_ref t ~tid ~mo ~loc

let rmw_candidate t ~loc =
  match Hashtbl.find_opt t.locs loc with
  | Some ls when not (Vec.is_empty ls.stores) -> Some (Vec.last ls.stores)
  | _ -> None

let mk_action t ~tid ~kind ~loc ~mo ?read_value ?written_value ?rf ?site ~clock ~release_clock () =
  let ts = thread t tid in
  let seq = ts.seq + 1 in
  let a =
    {
      Action.id = num_actions t;
      tid;
      seq;
      kind;
      loc;
      mo;
      read_value;
      written_value;
      rf;
      site;
      clock;
      release_clock;
    }
  in
  ts.seq <- seq;
  ts.clock <- clock;
  Vec.push t.actions a;
  (* fingerprint: per-thread chain element — everything the action is,
     with reads-from as the canonical (tid, seq) of the source write *)
  let h = h_int (h_int 0x5fe1L tid) seq in
  let h = h_int (h_int h (kind_tag kind)) (kind_payload kind) in
  let h = h_int (h_int h loc) (mo_tag mo) in
  let h = h_opt (h_opt h read_value) written_value in
  let h =
    match rf with
    | None -> h_int h (-3)
    | Some src ->
      let w = Vec.get t.actions src in
      h_int (h_int h w.Action.tid) w.Action.seq
  in
  let old = ts.fp_chain in
  let nw = h_step old h in
  ts.fp_chain <- nw;
  t.fp <- Int64.logxor t.fp (Int64.logxor old nw);
  if Memory_order.is_seq_cst mo then begin
    let old = t.fp_sc in
    let nw = h_int (h_int old tid) seq in
    t.fp_sc <- nw;
    t.fp <- Int64.logxor t.fp (Int64.logxor old nw)
  end;
  a

let base_clock t tid =
  let ts = thread t tid in
  Clock.set ts.clock tid (ts.seq + 1)

let commit_load t ~tid ~mo ~loc ~rf ?site () =
  let ts = thread t tid in
  let ls = loc_state t loc in
  let base = base_clock t tid in
  match rf with
  | None ->
    let a =
      mk_action t ~tid ~kind:Action.Load ~loc ~mo ~read_value:0 ?site ~clock:base ~release_clock:None ()
    in
    (a, Uninitialized_load a :: race_problems ls a)
  | Some (w : Action.t) ->
    let idx = store_index ls w in
    let acquired = acquired_clock ls idx in
    let clock = if Memory_order.is_acquire mo then Clock.join base acquired else base in
    ts.pending_acquire <- Clock.join ts.pending_acquire acquired;
    let read_value = match w.written_value with Some v -> v | None -> 0 in
    let a =
      mk_action t ~tid ~kind:Action.Load ~loc ~mo ~read_value ~rf:w.id ?site ~clock
        ~release_clock:None ()
    in
    push_read ls a idx;
    let problems = race_problems ls a in
    let problems = if is_poison w then Uninitialized_load a :: problems else problems in
    (a, problems)

let commit_na_load t ~tid ~loc ?site () =
  let ls = loc_state t loc in
  let base = base_clock t tid in
  let n = Vec.length ls.stores in
  if n = 0 then begin
    let a =
      mk_action t ~tid ~kind:Action.Na_load ~loc ~mo:Memory_order.Relaxed ~read_value:0 ?site ~clock:base
        ~release_clock:None ()
    in
    (a, Uninitialized_load a :: race_problems ls a)
  end
  else begin
    let w = Vec.last ls.stores in
    let read_value = match w.Action.written_value with Some v -> v | None -> 0 in
    let a =
      mk_action t ~tid ~kind:Action.Na_load ~loc ~mo:Memory_order.Relaxed ~read_value
        ~rf:w.Action.id ?site ~clock:base ~release_clock:None ()
    in
    Vec.push ls.na_reads a;
    let problems = race_problems ls a in
    let problems = if is_poison w then Uninitialized_load a :: problems else problems in
    (a, problems)
  end

let write_release_clock t ~tid ~mo ~clock =
  if Memory_order.is_release mo then Some clock
  else
    match (thread t tid).release_fence with
    | Some fc -> Some fc
    | None -> None

let commit_store t ~tid ~mo ~loc ~value ?site () =
  let ls = loc_state t loc in
  let clock = base_clock t tid in
  let release_clock = write_release_clock t ~tid ~mo ~clock in
  let a = mk_action t ~tid ~kind:Action.Store ~loc ~mo ~written_value:value ?site ~clock ~release_clock () in
  push_store t ls a;
  (a, race_problems ls a)

let commit_na_store t ~tid ~loc ~value ?site () =
  let ls = loc_state t loc in
  let clock = base_clock t tid in
  let a =
    mk_action t ~tid ~kind:Action.Na_store ~loc ~mo:Memory_order.Relaxed ~written_value:value ?site ~clock
      ~release_clock:None ()
  in
  push_store t ls a;
  (a, race_problems ls a)

let commit_rmw t ~tid ~mo ~loc ~value ?site () =
  let ts = thread t tid in
  let ls = loc_state t loc in
  if Vec.is_empty ls.stores then invalid_arg "commit_rmw: uninitialized location";
  let w = Vec.last ls.stores in
  let idx = Vec.length ls.stores - 1 in
  let base = base_clock t tid in
  let acquired = acquired_clock ls idx in
  let clock = if Memory_order.is_acquire mo then Clock.join base acquired else base in
  ts.pending_acquire <- Clock.join ts.pending_acquire acquired;
  let release_clock = write_release_clock t ~tid ~mo ~clock in
  let read_value = match w.Action.written_value with Some v -> v | None -> 0 in
  let a =
    mk_action t ~tid ~kind:Action.Rmw ~loc ~mo ~read_value ~written_value:value
      ~rf:w.Action.id ?site ~clock ~release_clock ()
  in
  push_read ls a idx;
  push_store t ls a;
  let problems = race_problems ls a in
  let problems = if is_poison w then Uninitialized_load a :: problems else problems in
  (a, problems)

let commit_fence t ~tid ~mo =
  let ts = thread t tid in
  let base = base_clock t tid in
  let clock = if Memory_order.is_acquire mo then Clock.join base ts.pending_acquire else base in
  let a =
    mk_action t ~tid ~kind:Action.Fence ~loc:Action.no_loc ~mo ~clock ~release_clock:None ()
  in
  if Memory_order.is_release mo then ts.release_fence <- Some clock;
  if Memory_order.is_seq_cst mo then ts.sc_fences <- (a.Action.seq, a.Action.id) :: ts.sc_fences;
  a

let commit_create t ~tid ~child =
  let clock = base_clock t tid in
  let a =
    mk_action t ~tid ~kind:(Action.Create child) ~loc:Action.no_loc ~mo:Memory_order.Relaxed ~clock
      ~release_clock:None ()
  in
  (thread t child).inherited <- clock;
  a

let commit_start t ~tid =
  let ts = thread t tid in
  let clock = Clock.join (base_clock t tid) ts.inherited in
  mk_action t ~tid ~kind:Action.Start ~loc:Action.no_loc ~mo:Memory_order.Relaxed ~clock ~release_clock:None
    ()

let commit_finish t ~tid =
  let clock = base_clock t tid in
  mk_action t ~tid ~kind:Action.Finish ~loc:Action.no_loc ~mo:Memory_order.Relaxed ~clock ~release_clock:None
    ()

let commit_join t ~tid ~target =
  let clock = Clock.join (base_clock t tid) (thread t target).clock in
  mk_action t ~tid ~kind:(Action.Join target) ~loc:Action.no_loc ~mo:Memory_order.Relaxed ~clock
    ~release_clock:None ()

let commit_poison t ~tid ~loc =
  let ls = loc_state t loc in
  let clock = base_clock t tid in
  let a =
    mk_action t ~tid ~kind:Action.Store ~loc ~mo:Memory_order.Relaxed ~site:"<alloc>" ~clock
      ~release_clock:None ()
  in
  push_store t ls a

let alloc t ~tid ~count ~init =
  let base = t.next_loc in
  t.next_loc <- t.next_loc + count;
  (match init with
  | None ->
    (* pristine malloc'd cells: a poison write per cell, so loads not
       forced past it observe uninitialized memory *)
    for i = 0 to count - 1 do
      commit_poison t ~tid ~loc:(base + i)
    done
  | Some v ->
    (* calloc-style zeroing: part of allocation, so it never races — model
       it as a relaxed atomic initialization *)
    for i = 0 to count - 1 do
      ignore (commit_store t ~tid ~mo:Memory_order.Relaxed ~loc:(base + i) ~value:v ~site:"<init>" ())
    done);
  base

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  Vec.iter (fun a -> Format.fprintf ppf "%a@," Action.pp a) t.actions;
  Format.fprintf ppf "@]"
