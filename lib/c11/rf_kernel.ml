(* Incremental reads-from consistency kernel.

   The per-location saturation state of the Tunç-style rf-consistency
   check, maintained on every [Execution] commit: per-(location, thread)
   write/read coherence orders (parallel monotone (seq, mo index)
   columns) plus the per-location SC-store order. The state answers the
   "smallest readable modification-order index" query the candidate
   filters need, and memoizes its expensive half — the foreign-thread
   coherence floor — so that the dominant spin-loop shape (a thread
   re-polling a location without acquiring new foreign knowledge)
   answers in O(1) instead of O(threads * log stores).

   Memo soundness. The foreign floor of a reading thread [tid] at one
   location is a pure function of
     (a) the reader's foreign-knowledge clock (its vector clock
         restricted to other threads), and
     (b) the other threads' per-location coherence columns.
   (a) is tracked physically: [Execution] maintains a per-thread
   [fclock] that only changes object identity when a join actually adds
   foreign knowledge, so pointer equality of the clock the memo was
   computed from certifies (a) unchanged. (b) cannot be certified by
   appends — but appends never matter: a clock entry for thread [u] is
   always <= [u]'s committed seq, so any *new* entry of [u] has a seq
   strictly above the memo clock's bound and falls outside every
   binary-search window. Only *undos* can change (b) under the memo, and
   those are counted: [era] on the location counts every undo event at
   the location, [era] on each per-thread column counts that thread's
   own undo events, and the memo stores their difference
   [fera = loc.era - column(tid).era] — the number of *foreign* undo
   events at memo time. Both counters are monotone (never journaled),
   so [fera] is too: it increases exactly when a foreign undo occurs and
   can never return to a previous value. A memo is therefore valid iff
   its clock is pointer-equal and its [fera] is unchanged. Own-thread
   undos bump both counters equally, so backtracking over the reader's
   own tail — the common DFS sibling re-run — preserves its memos. *)

type lt = {
  w_seq : int Vec.t;  (* seqs of this thread's writes here, ascending *)
  w_idx : int Vec.t;  (* their mo indices, ascending in lockstep *)
  r_seq : int Vec.t;  (* seqs of this thread's atomic reads here *)
  r_idx : int Vec.t;  (* the mo indices those reads observed *)
  mutable era : int;  (* undo events of this thread's entries here *)
  mutable memo_floor : int;  (* memoized foreign floor; -1 = none *)
  mutable memo_fclock : Clock.t;  (* fclock the memo was computed from *)
  mutable memo_fera : int;  (* foreign undo count at memo time *)
}

type loc = {
  mutable per_tid : lt option array;  (* grown on demand *)
  sc_ids : int Vec.t;  (* commit ids of seq_cst stores, increasing *)
  sc_idx : int Vec.t;  (* their mo indices, increasing *)
  mutable era : int;  (* undo events at this location *)
}

(* Pre-replay rejection statistics, shared across a whole execution
   arena (one record per [Execution.t]): [queries] counts candidate
   floor computations, [fast] the memoized O(1) answers among them, and
   [rejected] the total number of stores excluded before replay — each
   floor of [k] rejects the [k] oldest stores a full rescan would have
   had to re-filter or a naive enumerator would have replayed into. *)
type counters = { mutable queries : int; mutable fast : int; mutable rejected : int }

let counters_create () = { queries = 0; fast = 0; rejected = 0 }

let loc_create () = { per_tid = [||]; sc_ids = Vec.create (); sc_idx = Vec.create (); era = 0 }

let lt_create () =
  {
    w_seq = Vec.create ();
    w_idx = Vec.create ();
    r_seq = Vec.create ();
    r_idx = Vec.create ();
    era = 0;
    memo_floor = -1;
    memo_fclock = Clock.empty;
    memo_fera = 0;
  }

let loc_tid k tid =
  let n = Array.length k.per_tid in
  if tid >= n then begin
    let arr = Array.make (tid + 4) None in
    Array.blit k.per_tid 0 arr 0 n;
    k.per_tid <- arr
  end;
  match k.per_tid.(tid) with
  | Some tl -> tl
  | None ->
    let tl = lt_create () in
    k.per_tid.(tid) <- Some tl;
    tl

let on_write k ~tid ~seq ~id ~idx ~sc =
  let tl = loc_tid k tid in
  Vec.push tl.w_seq seq;
  Vec.push tl.w_idx idx;
  if sc then begin
    Vec.push k.sc_ids id;
    Vec.push k.sc_idx idx
  end

let on_read k ~tid ~seq ~idx =
  let tl = loc_tid k tid in
  Vec.push tl.r_seq seq;
  Vec.push tl.r_idx idx

(* Undo hooks: pop the columns the matching on_write/on_read pushed and
   bump both era counters — the location's and the undoing thread's —
   so every *other* thread's memoized floor at this location is
   invalidated while the undoing thread's own memo survives. *)

let bump_eras k (tl : lt) =
  k.era <- k.era + 1;
  tl.era <- tl.era + 1

let undo_write k ~tid ~sc =
  let tl = loc_tid k tid in
  ignore (Vec.pop tl.w_seq);
  ignore (Vec.pop tl.w_idx);
  if sc then begin
    ignore (Vec.pop k.sc_ids);
    ignore (Vec.pop k.sc_idx)
  end;
  bump_eras k tl

let undo_read k ~tid =
  let tl = loc_tid k tid in
  ignore (Vec.pop tl.r_seq);
  ignore (Vec.pop tl.r_idx);
  bump_eras k tl

(* Largest index [j] with [v.(j) <= x] in an ascending vector, or -1. *)
let bsearch_le (v : int Vec.t) x =
  let lo = ref 0 and hi = ref (Vec.length v) in
  (* invariant: v.(lo-1) <= x < v.(hi) *)
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Vec.get v mid <= x then lo := mid + 1 else hi := mid
  done;
  !lo - 1

(* Coherence floor contributed by the reader's own column: a thread's
   clock always covers every seq it has committed, so its newest write
   and newest observed read index are unconditionally hb-visible —
   O(1), no search and no memo needed. *)
let own_floor k ~tid =
  match if tid < Array.length k.per_tid then k.per_tid.(tid) else None with
  | None -> 0
  | Some tl -> max (Vec.last_or tl.w_idx 0) (Vec.last_or tl.r_idx 0)

(* Coherence floor contributed by every other thread's column under the
   reader's foreign-knowledge clock [fclock]: for each thread [u], the
   newest write (CoWR/CoRW) and the newest observed read index (CoRR)
   with seq <= fclock[u]. Memoized per (location, reader) — see the
   header comment for the validity argument. *)
let foreign_floor c k ~tid ~fclock =
  let tl = loc_tid k tid in
  let fera = k.era - tl.era in
  if tl.memo_floor >= 0 && tl.memo_fclock == fclock && tl.memo_fera = fera then begin
    c.fast <- c.fast + 1;
    tl.memo_floor
  end
  else begin
    let floor = ref 0 in
    let raise_to i = if i > !floor then floor := i in
    for u = 0 to Array.length k.per_tid - 1 do
      if u <> tid then
        match k.per_tid.(u) with
        | None -> ()
        | Some ul ->
          let bound = Clock.get fclock u in
          if bound > 0 then begin
            (match bsearch_le ul.w_seq bound with
            | -1 -> ()
            | j -> raise_to (Vec.get ul.w_idx j));
            match bsearch_le ul.r_seq bound with
            | -1 -> ()
            | j -> raise_to (Vec.get ul.r_idx j)
          end
    done;
    tl.memo_floor <- !floor;
    tl.memo_fclock <- fclock;
    tl.memo_fera <- fera;
    !floor
  end

let copy_lt tl =
  {
    w_seq = Vec.copy tl.w_seq;
    w_idx = Vec.copy tl.w_idx;
    r_seq = Vec.copy tl.r_seq;
    r_idx = Vec.copy tl.r_idx;
    era = tl.era;
    memo_floor = tl.memo_floor;
    memo_fclock = tl.memo_fclock;
    memo_fera = tl.memo_fera;
  }

let copy_loc k =
  {
    per_tid = Array.map (Option.map copy_lt) k.per_tid;
    sc_ids = Vec.copy k.sc_ids;
    sc_idx = Vec.copy k.sc_idx;
    era = k.era;
  }

let copy_counters (c : counters) = { queries = c.queries; fast = c.fast; rejected = c.rejected }
