(** Graphviz rendering of execution graphs: one cluster per thread with
    actions in program order (labels carry the Ords site names), reads-from
    edges (green, or blue [rf+sw] when the read synchronizes with its
    writer), and per-location modification-order edges (dashed). Useful
    for inspecting the buggy executions the checker and the weakening
    advisor report. *)

(** [render exec] is a complete DOT document.

    [highlight] lists [(src_id, dst_id)] edges cited as lint/advisor
    evidence: matching rf/mo edges are drawn red and thick, and cited
    pairs that coincide with no drawn edge appear as dashed red [hb]
    edges. [highlight_sites] fills every action belonging to the named
    Ords sites, so a witness trace shows the weakened site at a glance. *)
val render :
  ?highlight:(int * int) list -> ?highlight_sites:string list -> Execution.t -> string

(** [write_file exec path] renders into [path]. *)
val write_file :
  ?highlight:(int * int) list ->
  ?highlight_sites:string list ->
  Execution.t ->
  string ->
  unit
