(* Vector clocks with a packed fast representation.

   Two physical forms hide behind the abstract [t], discriminated by
   [Obj.is_int]:

   - packed: an immediate int holding four 15-bit fields — entry [tid]
     for tids 0..3 lives at bits [15*tid .. 15*tid+14]. This covers any
     clock whose knowledge fits tids 0..3 with seqs <= 32767, i.e. all
     of a <=4-thread exploration under the default action caps. Join,
     set and leq are straight-line word arithmetic with no allocation,
     and equal packed clocks are physically equal ([==]) because OCaml
     immediates compare by value.
   - array: an immutable [int array] fallback for tids >= 4 or seqs >
     32767 — exactly the pre-packing representation, copy-on-write.

   Canonical-form invariant: a clock is packed iff it is packable.
   Constructors spill to the array form only when the result genuinely
   cannot be packed (a too-large tid or seq), and monotonicity does the
   rest: [set]/[join] never decrease an entry, so an unpackable array
   stays unpackable under every operation, and no array-form clock is
   ever pointwise-equal to a packed one. Consequences relied on
   elsewhere:

   - [equal] with both sides packed is integer equality; mixed
     representations are never equal; array-array falls back to the
     pointwise scan.
   - physical equality still implies [equal]: for arrays as before
     (joins return an argument unchanged when nothing grew), for packed
     unconditionally. The journal-on-[!=] checks in [Execution] and the
     [==]-certified foreign-floor memo in [Rf_kernel] therefore stay
     sound and only gain hits — two packed clocks that happen to agree
     now certify each other even when built independently.

   A second invariant keeps [pp] canonical: every array form has a
   nonzero last entry (constructors size arrays to the highest nonzero
   tid), so the printed dense list never grows spurious trailing
   zeros. *)

type t = Obj.t

let field_bits = 15
let field_mask = 0x7fff
let packed_tids = 4

(* The packed payload needs 60 bits plus the sign; on a 32-bit host
   every clock takes the array form and [empty] is [[||]]. *)
let use_packed = Sys.int_size > packed_tids * field_bits

let is_packed (c : t) = Obj.is_int c
let bits (c : t) : int = Obj.obj c
let of_bits (b : int) : t = Obj.repr b
let arr (c : t) : int array = Obj.obj c
let of_arr (a : int array) : t = Obj.repr a
let empty : t = if use_packed then of_bits 0 else of_arr [||]

let p_get b tid = (b lsr (tid * field_bits)) land field_mask

(* Highest packed tid + 1 with a nonzero entry — the array length a
   spill needs to keep the nonzero-last-entry invariant. *)
let p_top b =
  if b = 0 then 0
  else if b lsr (3 * field_bits) <> 0 then 4
  else if b lsr (2 * field_bits) <> 0 then 3
  else if b lsr field_bits <> 0 then 2
  else 1

let a_get a tid = if tid < Array.length a then Array.unsafe_get a tid else 0

let get c tid =
  if is_packed c then if tid < packed_tids then p_get (bits c) tid else 0
  else a_get (arr c) tid

(* Spill packed bits [b] into a fresh array of at least [n] entries. *)
let spill b n =
  let n = if p_top b > n then p_top b else n in
  let a = Array.make n 0 in
  let k = if packed_tids < n then packed_tids else n in
  for i = 0 to k - 1 do
    Array.unsafe_set a i (p_get b i)
  done;
  a

let set c tid seq =
  if is_packed c then begin
    let b = bits c in
    if tid < packed_tids && seq <= field_mask then begin
      let sh = tid * field_bits in
      if (b lsr sh) land field_mask >= seq then c
      else of_bits ((b land lnot (field_mask lsl sh)) lor (seq lsl sh))
    end
    else if (if tid < packed_tids then p_get b tid else 0) >= seq then c
    else begin
      (* Unpackable update: tid >= 4 or seq > 32767, so the spilled
         array is canonical (genuinely not packable). *)
      let a = spill b (tid + 1) in
      a.(tid) <- seq;
      of_arr a
    end
  end
  else begin
    let a = arr c in
    if a_get a tid >= seq then c
    else begin
      let n = Array.length a in
      let a' = Array.make (if n > tid + 1 then n else tid + 1) 0 in
      Array.blit a 0 a' 0 n;
      a'.(tid) <- seq;
      of_arr a'
    end
  end

let singleton ~tid ~seq = set empty tid seq

let p_join x y =
  if x = y || y = 0 then x
  else if x = 0 then y
  else begin
    let m = field_mask in
    let a0 = x land m and b0 = y land m in
    let a1 = (x lsr 15) land m and b1 = (y lsr 15) land m in
    let a2 = (x lsr 30) land m and b2 = (y lsr 30) land m in
    let a3 = x lsr 45 and b3 = y lsr 45 in
    (if a0 >= b0 then a0 else b0)
    lor ((if a1 >= b1 then a1 else b1) lsl 15)
    lor ((if a2 >= b2 then a2 else b2) lsl 30)
    lor ((if a3 >= b3 then a3 else b3) lsl 45)
  end

(* packed [b] ⊔ array [a]; returns [ca] (the array-form operand) when
   the packed side adds nothing. The result stays array-form: it
   dominates the unpackable [a] pointwise. *)
let pa_join b a ca =
  if b = 0 then ca
  else begin
    let covered = ref true in
    (try
       for i = 0 to packed_tids - 1 do
         if p_get b i > a_get a i then begin
           covered := false;
           raise Exit
         end
       done
     with Exit -> ());
    if !covered then ca
    else begin
      let la = Array.length a in
      let n = if la > p_top b then la else p_top b in
      let c = Array.make n 0 in
      Array.blit a 0 c 0 la;
      for i = 0 to packed_tids - 1 do
        let v = p_get b i in
        if v > a_get c i then c.(i) <- v
      done;
      of_arr c
    end
  end

(* array ⊔ array, returning the dominating operand unchanged when the
   other adds nothing. *)
let aa_join a b ca cb =
  let la = Array.length a and lb = Array.length b in
  if la >= lb then begin
    let need = ref false in
    (try
       for i = 0 to lb - 1 do
         if Array.unsafe_get b i > Array.unsafe_get a i then begin
           need := true;
           raise Exit
         end
       done
     with Exit -> ());
    if not !need then ca
    else begin
      let c = Array.copy a in
      for i = 0 to lb - 1 do
        if Array.unsafe_get b i > Array.unsafe_get c i then
          Array.unsafe_set c i (Array.unsafe_get b i)
      done;
      of_arr c
    end
  end
  else begin
    let need = ref false in
    (try
       for i = 0 to la - 1 do
         if Array.unsafe_get a i > Array.unsafe_get b i then begin
           need := true;
           raise Exit
         end
       done
     with Exit -> ());
    if not !need then cb
    else begin
      let c = Array.copy b in
      for i = 0 to la - 1 do
        if Array.unsafe_get a i > Array.unsafe_get c i then
          Array.unsafe_set c i (Array.unsafe_get a i)
      done;
      of_arr c
    end
  end

let join a b =
  if is_packed a then
    if is_packed b then of_bits (p_join (bits a) (bits b)) else pa_join (bits a) (arr b) b
  else if is_packed b then pa_join (bits b) (arr a) a
  else aa_join (arr a) (arr b) a b

let covers c ~tid ~seq = get c tid >= seq

let p_leq x y =
  x = y
  || (let m = field_mask in
      x land m <= y land m
      && (x lsr 15) land m <= (y lsr 15) land m
      && (x lsr 30) land m <= (y lsr 30) land m
      && x lsr 45 <= y lsr 45)

let aa_leq a b =
  let la = Array.length a in
  let rec go i = i >= la || (Array.unsafe_get a i <= a_get b i && go (i + 1)) in
  go 0

let leq a b =
  if is_packed a then
    if is_packed b then p_leq (bits a) (bits b)
    else begin
      let x = bits a and bb = arr b in
      let rec go i =
        i >= packed_tids || (p_get x i <= a_get bb i && go (i + 1))
      in
      go 0
    end
  else if is_packed b then
    (* array <= packed is impossible: the array form is canonical only
       for unpackable clocks, which exceed every packed one somewhere. *)
    false
  else aa_leq (arr a) (arr b)

let equal a b =
  if is_packed a then is_packed b && bits a = bits b
  else if is_packed b then false
  else
    let x = arr a and y = arr b in
    aa_leq x y && aa_leq y x

let to_dense c =
  if is_packed c then begin
    let b = bits c in
    List.init (p_top b) (p_get b)
  end
  else Array.to_list (arr c)

let pp ppf c =
  Format.fprintf ppf "[%a]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
       Format.pp_print_int)
    (to_dense c)
