(** Minimal growable array used for action logs and per-location store
    lists. Indices are dense from 0 in push order. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val push : 'a t -> 'a -> unit
val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit

(** Last pushed element. Raises [Invalid_argument] when empty. *)
val last : 'a t -> 'a

(** [last_or v d] is the last pushed element, or [d] when empty — the
    branch-free form the rf-kernel floor computations use. *)
val last_or : 'a t -> 'a -> 'a

val is_empty : 'a t -> bool

(** [truncate v n] drops elements from the end so that [length v = n]. *)
val truncate : 'a t -> int -> unit

(** Remove and return the last element. Raises [Invalid_argument] when
    empty. *)
val pop : 'a t -> 'a

(** Shallow copy: fresh backing storage, shared elements. *)
val copy : 'a t -> 'a t

(** The live backing array, for hot loops that have already validated an
    index bound against {!length}. Entries at or past [length v] are
    garbage, and any {!push} may replace the array entirely — callers
    must not retain it across mutation. *)
val unsafe_data : 'a t -> 'a array

val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val to_list : 'a t -> 'a list

(** [fold_right_while f v init] folds from the newest element toward the
    oldest, stopping early when [f] returns [`Stop]. *)
val fold_right_while : (int -> 'a -> 'b -> [ `Continue of 'b | `Stop of 'b ]) -> 'a t -> 'b -> 'b
