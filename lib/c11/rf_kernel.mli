(** Incremental reads-from consistency kernel.

    Per-location saturation state for candidate filtering: the
    coherence orders each thread's writes and atomic reads induce at a
    location, as parallel monotone (seq, mo index) columns, plus the
    SC-store order. [Execution] feeds the state on every commit/undo
    and asks it for the smallest modification-order index a new load
    may read — rejecting incoherent rf choices {e before} replay.

    The types are transparent: [Execution] owns the only instances and
    its slow-path query (the one that handles live SC fences) walks the
    columns directly. Invariants:

    - The (seq, idx) columns are ascending in lockstep: seq by
      construction, write idx because commit order restricted to one
      location is modification order, read idx by CoRR.
    - [era] counters are monotone — undos bump them, nothing restores
      them — which is what makes the memoized foreign floor sound
      across arena [mark]/[restore] (see rf_kernel.ml's header).
    - A memoized floor is valid iff its source clock is pointer-equal
      to the reader's current foreign-knowledge clock and the foreign
      undo count [loc.era - column(reader).era] is unchanged. *)

type lt = {
  w_seq : int Vec.t;
  w_idx : int Vec.t;
  r_seq : int Vec.t;
  r_idx : int Vec.t;
  mutable era : int;
  mutable memo_floor : int;
  mutable memo_fclock : Clock.t;
  mutable memo_fera : int;
}

type loc = {
  mutable per_tid : lt option array;
  sc_ids : int Vec.t;
  sc_idx : int Vec.t;
  mutable era : int;
}

(** Query statistics for one execution arena: total floor queries, the
    memoized O(1) answers among them, and the cumulative number of
    stores rejected before replay (the sum of returned floors). *)
type counters = { mutable queries : int; mutable fast : int; mutable rejected : int }

val counters_create : unit -> counters
val copy_counters : counters -> counters
val loc_create : unit -> loc

(** The per-thread column at a location, created on first touch. *)
val loc_tid : loc -> int -> lt

(** Commit hooks: append to the (ascending) columns. [idx] is the mo
    index of the store / the mo index a read observed; [id] the commit
    id; [sc] whether the store is seq_cst. *)

val on_write : loc -> tid:int -> seq:int -> id:int -> idx:int -> sc:bool -> unit
val on_read : loc -> tid:int -> seq:int -> idx:int -> unit

(** Undo hooks: pop what the matching commit hook pushed and bump the
    era counters, invalidating every {e other} thread's memo here. *)

val undo_write : loc -> tid:int -> sc:bool -> unit
val undo_read : loc -> tid:int -> unit

(** Largest index [j] with [v.(j) <= x] in an ascending vector, or -1. *)
val bsearch_le : int Vec.t -> int -> int

(** Floor from the reader's own column — unconditionally hb-visible,
    O(1). *)
val own_floor : loc -> tid:int -> int

(** Floor from every other thread's column under the reader's
    foreign-knowledge clock; memoized per (location, reader), bumping
    [counters.fast] on a memo hit. *)
val foreign_floor : counters -> loc -> tid:int -> fclock:Clock.t -> int

val copy_loc : loc -> loc
