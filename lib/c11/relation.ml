type t = {
  n : int;
  succ : bool array array;  (* succ.(a).(b) = direct edge a -> b *)
  mutable closure : bool array array option;  (* cached transitive closure *)
}

let create n = { n; succ = Array.make_matrix n n false; closure = None }

let size r = r.n

let add_edge r a b =
  if a <> b && not r.succ.(a).(b) then begin
    r.succ.(a).(b) <- true;
    r.closure <- None
  end

let has_edge r a b = r.succ.(a).(b)

let successors r a =
  let out = ref [] in
  for b = r.n - 1 downto 0 do
    if r.succ.(a).(b) then out := b :: !out
  done;
  !out

let predecessors r b =
  let out = ref [] in
  for a = r.n - 1 downto 0 do
    if r.succ.(a).(b) then out := a :: !out
  done;
  !out

(* Floyd–Warshall closure; n is a handful of method calls so O(n^3) is
   irrelevant, and caching makes repeated reachability queries O(1). *)
let closure r =
  match r.closure with
  | Some c -> c
  | None ->
    let c = Array.map Array.copy r.succ in
    for k = 0 to r.n - 1 do
      for i = 0 to r.n - 1 do
        if c.(i).(k) then
          for j = 0 to r.n - 1 do
            if c.(k).(j) then c.(i).(j) <- true
          done
      done
    done;
    r.closure <- Some c;
    c

let reachable r a b = (closure r).(a).(b)

let ordered r a b = reachable r a b || reachable r b a

let is_acyclic r =
  let c = closure r in
  let ok = ref true in
  for i = 0 to r.n - 1 do
    if c.(i).(i) then ok := false
  done;
  !ok

let down_set r node =
  let c = closure r in
  let out = ref [] in
  for a = r.n - 1 downto 0 do
    if a <> node && c.(a).(node) then out := a :: !out
  done;
  !out

(* Enumerate linear extensions by repeatedly choosing a minimal element.
   [pick_random] selects one uniformly instead of branching. *)
let topological_sorts ?(max = 20_000) ?sample ~nodes r =
  let in_nodes = Array.make r.n false in
  List.iter (fun x -> in_nodes.(x) <- true) nodes;
  let indeg = Array.make r.n 0 in
  List.iter
    (fun b ->
      List.iter
        (fun a -> if in_nodes.(a) && r.succ.(a).(b) then indeg.(b) <- indeg.(b) + 1)
        nodes)
    nodes;
  let total = List.length nodes in
  match sample with
  | Some (count, seed) ->
    let rng = Random.State.make [| seed |] in
    let draw () =
      let indeg = Array.copy indeg in
      let avail = ref (List.filter (fun x -> indeg.(x) = 0) nodes) in
      let acc = ref [] in
      for _ = 1 to total do
        match !avail with
        | [] -> invalid_arg "topological_sorts: cycle"
        | l ->
          let k = Random.State.int rng (List.length l) in
          let x = List.nth l k in
          avail := List.filter (fun y -> y <> x) l;
          acc := x :: !acc;
          List.iter
            (fun y ->
              if in_nodes.(y) && r.succ.(x).(y) then begin
                indeg.(y) <- indeg.(y) - 1;
                if indeg.(y) = 0 then avail := y :: !avail
              end)
            nodes
      done;
      List.rev !acc
    in
    (List.init count (fun _ -> draw ()), false)
  | None ->
    let results = ref [] in
    let count = ref 0 in
    let truncated = ref false in
    let indeg = Array.copy indeg in
    let rec go acc picked =
      if !count >= max then truncated := true
      else if picked = total then begin
        incr count;
        results := List.rev acc :: !results
      end
      else
        List.iter
          (fun x ->
            if (not !truncated) && indeg.(x) = 0 then begin
              indeg.(x) <- -1;
              let bumped = ref [] in
              List.iter
                (fun y ->
                  if in_nodes.(y) && r.succ.(x).(y) then begin
                    indeg.(y) <- indeg.(y) - 1;
                    bumped := y :: !bumped
                  end)
                nodes;
              go (x :: acc) (picked + 1);
              List.iter (fun y -> indeg.(y) <- indeg.(y) + 1) !bumped;
              indeg.(x) <- 0
            end)
          nodes
    in
    go [] 0;
    (List.rev !results, !truncated)

(* Prefix-sharing DFS over the same tree [topological_sorts] enumerates
   (the PR-4 traversal hook). Instead of materializing every linear
   extension, visit the topological-sort tree once, threading a caller
   state down the recursion: a shared prefix is presented to [enter]
   once, not once per extension below it. Child order and the [max] leaf
   budget mirror [topological_sorts] exactly — a walk that never stops
   attempts precisely the extensions the enumerator would return, in the
   same order, and reports truncation under the same condition (a visit
   attempted after [max] complete extensions). *)
let walk_linear_extensions ?(max = 20_000) ~nodes r ~init ~enter ~leaf =
  let in_nodes = Array.make r.n false in
  List.iter (fun x -> in_nodes.(x) <- true) nodes;
  let indeg = Array.make r.n 0 in
  List.iter
    (fun b ->
      List.iter
        (fun a -> if in_nodes.(a) && r.succ.(a).(b) then indeg.(b) <- indeg.(b) + 1)
        nodes)
    nodes;
  let total = List.length nodes in
  let count = ref 0 in
  let truncated = ref false in
  let stopped = ref false in
  let rec go st picked =
    if picked = total then begin
      if !count >= max then truncated := true
      else begin
        incr count;
        match leaf st with
        | `Stop -> stopped := true
        | `Continue -> ()
      end
    end
    else
      List.iter
        (fun x ->
          if (not !truncated) && (not !stopped) && indeg.(x) = 0 then begin
            if !count >= max then truncated := true
            else begin
              match enter st x with
              | `Stop -> stopped := true
              | `Enter st' ->
                indeg.(x) <- -1;
                let bumped = ref [] in
                List.iter
                  (fun y ->
                    if in_nodes.(y) && r.succ.(x).(y) then begin
                      indeg.(y) <- indeg.(y) - 1;
                      bumped := y :: !bumped
                    end)
                  nodes;
                go st' (picked + 1);
                List.iter (fun y -> indeg.(y) <- indeg.(y) + 1) !bumped;
                indeg.(x) <- 0
            end
          end)
        nodes
  in
  go init 0;
  !truncated

let any_topological_sort ~nodes r =
  match topological_sorts ~max:1 ~nodes r with
  | sort :: _, _ -> sort
  | [], _ -> invalid_arg "any_topological_sort: cycle"
